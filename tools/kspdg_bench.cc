// kspdg_bench: drive RoutingService with a mixed query/update workload
// against a registry dataset and emit BENCH_*-style JSON.
//
// Usage:
//   kspdg_bench [--dataset NY-S] [--vertices 4096] [--k 4] [--queries 48]
//               [--batches 6] [--threads 4] [--alpha 0.35] [--tau 0.30]
//               [--z 0] [--seed 42] [--backends kspdg,yen,findksp]
//               [--batch-size 0] [--batch-threads 0] [--shards 0]
//               [--remote-shards 0] [--replicas 1] [--worker-binary PATH]
//               [--diverse] [--diverse-theta 0.5] [--diverse-overfetch 4]
//               [--overload-factor 0]
//               [--out BENCH_service.json] [--metrics-out METRICS.json]
//
// --batch-size N (N > 0) appends a batch-vs-sequential throughput phase:
// the mixed request list is answered once through sequential Query calls
// and once through QueryBatch in batches of N, and both throughputs land
// in the BENCH JSON under "batch".
//
// --shards N (N > 0) appends a sharded-vs-unsharded phase: a fresh
// ShardedRoutingService with N shards and a fresh RoutingService receive
// the identical traffic history, answer the same request list, and every
// sharded answer is checked path-by-path against the unsharded one. The
// comparison, routing split (direct vs scatter/gather partials) and both
// throughputs land in the BENCH JSON under "shard".
//
// --shards N --batch-size M together additionally run the combined
// shard-batch phase: the request list is submitted to the sharded service
// asynchronously (SubmitBatch tickets, M requests per batch) and every
// answer is checked against the unsharded sequential reference; parity
// counters (mismatches, errors, non_uniform_batches — all must be 0),
// per-shard partial-cache hits and both throughputs land in the BENCH JSON
// under "shard_batch".
//
// --remote-shards N (N > 0) appends the remote-shard phase: a
// RemoteShardedRoutingService spawns N out-of-process shard_worker
// processes (unix-socket RPC, two-phase epoch commit), receives the same
// traffic history as a fresh in-process ShardedRoutingService, and answers
// the same request list through a sequential and a batched leg; every
// remote answer is checked path-by-path against the in-process one. Parity
// counters (mismatches, errors, worker_restarts — all must be 0),
// transport totals and all three throughputs land in the BENCH JSON under
// "remote_shard". --worker-binary overrides the shard_worker auto-location
// (next to the kspdg_bench executable, or $KSPDG_WORKER_BIN).
//
// --replicas R (R > 1, with --remote-shards) replicates each remote shard
// across R workers. The remote phase then also measures the read-scaling
// baseline (an identical R=1 fleet answering the same list →
// "baseline_r1_qps", with the per-replica read split in
// "reads_by_replica") and runs a failover drill: one replica is killed and
// the list re-answered (failover_errors/failover_mismatches must be 0),
// then one more traffic batch auto-restarts and catches the victim up
// ("replica_catchups" >= 1) before a final parity pass.
//
// --diverse appends a diverse-vs-plain phase: the mixed request list is
// answered once as plain kKsp and once as kDiverseKsp (over-fetch k' =
// k * overfetch, MFP/MinHash filter down to k routes with pairwise
// similarity <= theta); kept/filtered counts, the mean pairwise similarity,
// the per-query MFP compression ratio, and both throughputs land in the
// BENCH JSON under "diverse". With --shards N, the shard parity phase also
// answers a kDiverseKsp copy of its request list on both services.
//
// --overload-factor F (F > 0) appends the open-loop overload phase: a
// fresh service answers the request list sequentially (measuring its
// capacity and recording the no-pressure reference answers), then the same
// requests — priorities rotating interactive/normal/batch, four tenants,
// per-priority deadlines — are offered through SubmitBatch at F times the
// measured capacity against a small submission queue with per-tenant
// quotas. Admission accounting (admitted + shed_deadline + shed_quota ==
// requests, errors must be 0), goodput, per-priority p50/p99 and the
// service-registry cross-check land in the BENCH JSON under "overload".
//
// --metrics-out FILE writes the merged metrics-registry snapshot of every
// service the bench built (each sample tagged service="mixed"/"sharded"/
// "remote"; the remote fleet's worker registries ride along with shard
// labels) as strict JSON. The BENCH JSON itself always carries a "metrics"
// object cross-checking those registries against the issued request counts.
//
// Set KSPDG_DATA_DIR to run on real DIMACS files instead of the synthetic
// stand-ins (see src/workload/datasets.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "workload/bench_runner.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset NAME] [--vertices N] [--k K] "
               "[--queries N] [--batches N] [--threads N] [--alpha F] "
               "[--tau F] [--z N] [--seed N] [--backends a,b,c] "
               "[--batch-size N] [--batch-threads N] [--shards N] "
               "[--remote-shards N] [--replicas R] [--worker-binary PATH] "
               "[--diverse] [--diverse-theta F] [--diverse-overfetch N] "
               "[--overload-factor F] [--out FILE] [--metrics-out FILE]\n",
               argv0);
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  kspdg::BenchOptions options;
  std::string out_file;
  std::string metrics_out_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      options.dataset = next();
    } else if (arg == "--vertices") {
      options.target_vertices = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--k") {
      options.k = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queries") {
      options.queries_per_backend = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--batches") {
      options.num_batches = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      options.query_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--alpha") {
      options.alpha = std::strtod(next(), nullptr);
    } else if (arg == "--tau") {
      options.tau = std::strtod(next(), nullptr);
    } else if (arg == "--z") {
      options.z = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--backends") {
      options.backends = SplitCsv(next());
    } else if (arg == "--batch-size") {
      options.batch_size = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--batch-threads") {
      options.batch_threads =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--shards") {
      options.shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--remote-shards") {
      options.remote_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--replicas") {
      options.replicas = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--worker-binary") {
      options.worker_binary = next();
    } else if (arg == "--diverse") {
      options.diverse = true;
    } else if (arg == "--diverse-theta") {
      options.diverse_theta = std::strtod(next(), nullptr);
    } else if (arg == "--diverse-overfetch") {
      options.diverse_overfetch =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--overload-factor") {
      options.overload_factor = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--metrics-out") {
      metrics_out_file = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  kspdg::Result<kspdg::BenchReport> report =
      kspdg::RunMixedBench(options);
  if (!report.ok()) {
    std::fprintf(stderr, "bench failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::string json = report.value().ToJson();
  if (out_file.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
      return 1;
    }
    out << json;
    std::fprintf(stderr, "wrote %s\n", out_file.c_str());
  }
  if (!metrics_out_file.empty()) {
    std::ofstream out(metrics_out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out_file.c_str());
      return 1;
    }
    out << report.value().metrics_export;
    std::fprintf(stderr, "wrote %s\n", metrics_out_file.c_str());
  }
  return 0;
}
