// shard_worker: one out-of-process shard of a RemoteShardedRoutingService.
//
// Usage:
//   shard_worker --socket PATH [--idle-timeout-ms N]
//
// The worker listens on a unix socket and speaks the src/rpc protocol. A
// LoadGraph request ships the full graph + DTLP knobs + (shard_id,
// num_shards, replica_id, base_epoch); the worker rebuilds the partition,
// the DTLP, and the shard assignment with the same deterministic code the
// coordinator runs, so its subgraph weight copies and level-1 indexes are
// identical to the coordinator's by construction. The shipped weights may
// be a mid-stream checkpoint: the worker then starts at base_epoch and the
// coordinator replays the batches committed after it, which is how a
// replica that died (or fell behind) catches back up. From then on it serves the two requests
// that matter:
//
//   Partials       the KSP-DG refine step for boundary pairs inside its
//                  owned subgraphs (the per-query Yen work, moved off the
//                  coordinator process);
//   EpochPrepare   its slice of Algorithm 2 for one traffic batch — the
//                  worker filters the full batch to its owned subgraphs
//                  with the same grouping the in-process shard fan-out
//                  uses, applies, and replies. Prepares are idempotent:
//                  re-sending the prepared epoch replays the stored reply,
//                  so coordinator retries after a lost reply are safe.
//
// The single-threaded loop (src/rpc/server.h) means requests cannot
// interleave worker-side; cross-process ordering is the coordinator's
// locking protocol. A worker whose coordinator disappears exits on the
// accept idle timeout instead of lingering as an orphan.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "dtlp/dtlp.h"
#include "graph/graph.h"
#include "kspdg/partial_provider.h"
#include "obs/metrics.h"
#include "partition/shard_assignment.h"
#include "rpc/server.h"
#include "rpc/wire.h"

namespace kspdg {
namespace {

class WorkerState {
 public:
  explicit WorkerState(const RpcServer& server) {
    // worker_-prefixed so a merged fleet export never collides with the
    // coordinator's own serving metrics; the coordinator adds the shard
    // label when it merges.
    partials_requests_ = metrics_.GetCounter("worker_partials_requests_total");
    yen_runs_ = metrics_.GetCounter("worker_yen_runs_total");
    epoch_prepares_ = metrics_.GetCounter("worker_epoch_prepares_total");
    updates_applied_ = metrics_.GetCounter("worker_updates_applied_total");
    pings_ = metrics_.GetCounter("worker_pings_total");
    graph_loads_ = metrics_.GetCounter("worker_graph_loads_total");
    epoch_gauge_ = metrics_.GetGauge("worker_epoch");
    metrics_.AddCounterCallback("worker_rpc_requests_total", {},
                                [&server] { return server.requests_served(); });
    metrics_.AddCounterCallback("worker_rpc_bytes_received_total", {},
                                [&server] { return server.bytes_received(); });
    metrics_.AddCounterCallback("worker_rpc_bytes_sent_total", {},
                                [&server] { return server.bytes_sent(); });
  }

  Status HandleLoadGraph(const std::string& payload, std::string* reply) {
    LoadGraphRequest request;
    KSPDG_RETURN_NOT_OK(LoadGraphRequest::Decode(payload, &request));
    if (request.num_shards == 0 || request.shard_id >= request.num_shards) {
      return Status::InvalidArgument("load-graph shard id out of range");
    }
    Result<Graph> graph = request.BuildGraph();
    if (!graph.ok()) return graph.status();
    // The DTLP keeps a pointer to the graph: pin it on the heap first, and
    // only swap the old state out once the whole rebuild succeeded.
    auto owned_graph = std::make_unique<Graph>(std::move(graph).value());
    Result<std::unique_ptr<Dtlp>> dtlp =
        Dtlp::Build(*owned_graph, request.dtlp);
    if (!dtlp.ok()) return dtlp.status();
    Result<ShardAssignment> assignment =
        AssignShards(dtlp.value()->partition(), request.num_shards);
    if (!assignment.ok()) return assignment.status();

    graph_ = std::move(owned_graph);
    dtlp_ = std::move(dtlp).value();
    assignment_ = std::move(assignment).value();
    shard_id_ = request.shard_id;
    replica_id_ = request.replica_id;
    owned_.assign(dtlp_->NumSubgraphs(), 0);
    for (SubgraphId sgid : assignment_.subgraphs_of_shard[shard_id_]) {
      owned_[sgid] = 1;
    }
    // The shipped weights are the coordinator's checkpoint: the worker
    // starts at the checkpoint epoch and the coordinator replays only the
    // batches committed after it (prepare still requires epoch_ + 1, so
    // replay order is enforced the same way live batches are).
    epoch_ = request.base_epoch;
    last_prepare_reply_.clear();
    graph_loads_.Increment();
    epoch_gauge_.Set(static_cast<int64_t>(epoch_));

    LoadGraphReply loaded;
    loaded.subgraphs_owned = assignment_.subgraphs_of_shard[shard_id_].size();
    loaded.vertices_owned = assignment_.vertices_of_shard[shard_id_];
    *reply = loaded.Encode();
    return Status::OK();
  }

  Status HandlePartials(const std::string& payload, std::string* reply) {
    KSPDG_RETURN_NOT_OK(RequireLoaded());
    PartialsRequest request;
    KSPDG_RETURN_NOT_OK(PartialsRequest::Decode(payload, &request));
    if (request.epoch != epoch_) {
      // The coordinator and this worker disagree about which batches have
      // been applied; serving would risk a silently wrong (stale) answer.
      return Status::FailedPrecondition(
          "worker is at epoch " + std::to_string(epoch_) +
          " but the partials request names epoch " +
          std::to_string(request.epoch));
    }
    const Partition& partition = dtlp_->partition();
    PartialsReply result;
    result.lists.reserve(request.sgids.size());
    for (SubgraphId sgid : request.sgids) {
      if (sgid >= owned_.size() || owned_[sgid] == 0) {
        return Status::InvalidArgument(
            "partials request names subgraph " + std::to_string(sgid) +
            " which this worker does not own");
      }
      const Subgraph& sg = partition.subgraphs[sgid];
      result.lists.push_back(
          {sgid, LocalPartialProvider::PartialsInSubgraph(
                     sg, request.x, request.y, request.depth)});
    }
    partials_requests_.Increment();
    yen_runs_.Increment(request.sgids.size());
    *reply = result.Encode();
    return Status::OK();
  }

  Status HandlePrepare(const std::string& payload, std::string* reply) {
    KSPDG_RETURN_NOT_OK(RequireLoaded());
    EpochPrepareRequest request;
    KSPDG_RETURN_NOT_OK(EpochPrepareRequest::Decode(payload, &request));
    if (request.epoch == epoch_ && !last_prepare_reply_.empty()) {
      // Retry of the prepare we already applied: replay the stored reply.
      *reply = last_prepare_reply_;
      return Status::OK();
    }
    if (request.epoch != epoch_ + 1) {
      return Status::FailedPrecondition(
          "worker is at epoch " + std::to_string(epoch_) +
          " but the prepare names epoch " + std::to_string(request.epoch) +
          " (worker needs a reload + replay)");
    }
    for (const WeightUpdate& update : request.updates) {
      if (update.edge >= graph_->NumEdges()) {
        return Status::InvalidArgument("prepare update edge out of range");
      }
      if (!(update.new_forward > 0) || !(update.new_backward > 0)) {
        return Status::InvalidArgument("prepare weights must be positive");
      }
    }

    // Identical application order to the in-process shard fan-out: group
    // the batch per owned subgraph preserving batch order, then apply the
    // touched subgraphs ascending.
    const Partition& partition = dtlp_->partition();
    std::vector<std::vector<WeightUpdate>> per_subgraph(
        dtlp_->NumSubgraphs());
    std::vector<SubgraphId> touched;
    for (const WeightUpdate& update : request.updates) {
      graph_->SetWeight(update);  // keep the flat copy coherent
      SubgraphId sgid = partition.subgraph_of_edge[update.edge];
      if (sgid == kInvalidSubgraph || owned_[sgid] == 0) continue;
      if (per_subgraph[sgid].empty()) touched.push_back(sgid);
      per_subgraph[sgid].push_back(update);
    }
    std::sort(touched.begin(), touched.end());
    EpochPrepareReply applied;
    applied.epoch = request.epoch;
    for (SubgraphId sgid : touched) {
      dtlp_->ApplyUpdatesToSubgraph(sgid, per_subgraph[sgid]);
      dtlp_->RefreshSubgraph(sgid);
      applied.updates_applied += per_subgraph[sgid].size();
    }
    applied.subgraphs_touched = touched.size();
    epoch_ = request.epoch;
    epoch_prepares_.Increment();
    updates_applied_.Increment(applied.updates_applied);
    epoch_gauge_.Set(static_cast<int64_t>(epoch_));
    last_prepare_reply_ = applied.Encode();
    *reply = last_prepare_reply_;
    return Status::OK();
  }

  Status HandleCommit(const std::string& payload, std::string* reply) {
    KSPDG_RETURN_NOT_OK(RequireLoaded());
    EpochCommitRequest request;
    KSPDG_RETURN_NOT_OK(EpochCommitRequest::Decode(payload, &request));
    if (request.epoch != epoch_) {
      return Status::FailedPrecondition(
          "commit names epoch " + std::to_string(request.epoch) +
          " but the worker prepared epoch " + std::to_string(epoch_));
    }
    // Bookkeeping only: the state moved during prepare. A missed commit is
    // recovered implicitly by the next prepare/partials epoch check.
    EpochCommitReply committed;
    committed.epoch = epoch_;
    *reply = committed.Encode();
    return Status::OK();
  }

  Status HandlePing(const std::string& payload, std::string* reply) {
    PingRequest request;
    KSPDG_RETURN_NOT_OK(PingRequest::Decode(payload, &request));
    pings_.Increment();
    PingReply pong;
    pong.nonce = request.nonce;
    pong.epoch = epoch_;
    pong.shard_id = shard_id_;
    pong.replica_id = replica_id_;
    // Every ping doubles as a metrics scrape: the whole worker registry
    // rides back in the reply, so the coordinator's fleet-wide export needs
    // no extra protocol message.
    pong.metrics_blob = metrics_.Snapshot().EncodeWire();
    *reply = pong.Encode();
    return Status::OK();
  }

 private:
  Status RequireLoaded() const {
    if (dtlp_ == nullptr) {
      return Status::FailedPrecondition("worker has no graph loaded");
    }
    return Status::OK();
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<Dtlp> dtlp_;
  ShardAssignment assignment_;
  ShardId shard_id_ = kInvalidShard;
  uint32_t replica_id_ = 0;
  std::vector<char> owned_;
  /// Last prepared epoch == number of traffic batches applied (the worker
  /// treats prepare as apply; commit is bookkeeping).
  uint64_t epoch_ = 0;
  std::string last_prepare_reply_;

  MetricsRegistry metrics_;
  Counter partials_requests_;
  Counter yen_runs_;
  Counter epoch_prepares_;
  Counter updates_applied_;
  Counter pings_;
  Counter graph_loads_;
  Gauge epoch_gauge_;
};

int Run(const std::string& socket_path, int64_t idle_timeout_ms) {
  Result<std::unique_ptr<RpcServer>> server = RpcServer::Listen(socket_path);
  if (!server.ok()) {
    std::fprintf(stderr, "shard_worker: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  WorkerState state(*server.value());
  RpcServer::Handler handler =
      [&state](MessageType type, const std::string& payload,
               MessageType* reply_type, std::string* reply_payload,
               bool* shutdown) -> Status {
    switch (type) {
      case MessageType::kLoadGraphRequest:
        *reply_type = MessageType::kLoadGraphReply;
        return state.HandleLoadGraph(payload, reply_payload);
      case MessageType::kPartialsRequest:
        *reply_type = MessageType::kPartialsReply;
        return state.HandlePartials(payload, reply_payload);
      case MessageType::kEpochPrepareRequest:
        *reply_type = MessageType::kEpochPrepareReply;
        return state.HandlePrepare(payload, reply_payload);
      case MessageType::kEpochCommitRequest:
        *reply_type = MessageType::kEpochCommitReply;
        return state.HandleCommit(payload, reply_payload);
      case MessageType::kPingRequest:
        *reply_type = MessageType::kPingReply;
        return state.HandlePing(payload, reply_payload);
      case MessageType::kShutdownRequest:
        *reply_type = MessageType::kShutdownReply;
        *shutdown = true;
        return Status::OK();
      default:
        return Status::InvalidArgument(
            "unknown request type " +
            std::to_string(static_cast<unsigned>(type)));
    }
  };
  Status served = server.value()->Serve(handler, idle_timeout_ms);
  if (served.ok()) return 0;  // clean shutdown request
  if (served.code() == StatusCode::kDeadlineExceeded) {
    // Orphan guard: no coordinator showed up (or the last one died and
    // never came back). Exiting quietly is the desired behaviour.
    return 0;
  }
  std::fprintf(stderr, "shard_worker: %s\n", served.ToString().c_str());
  return 1;
}

}  // namespace
}  // namespace kspdg

int main(int argc, char** argv) {
  std::string socket_path;
  int64_t idle_timeout_ms = 30'000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "shard_worker: missing value for %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = std::strtoll(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s --socket PATH [--idle-timeout-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "shard_worker: --socket is required\n");
    return 2;
  }
  return kspdg::Run(socket_path, idle_timeout_ms);
}
