#!/usr/bin/env python3
"""kspdg_lint: repo-invariant linter for the kspdg tree (blocking in CI).

Four rules, each encoding an invariant the compiler cannot (or does not)
check on its own:

  nodiscard      Status / Result are declared [[nodiscard]] at class scope
                 (src/core/status.h), the asynchronous submit APIs carry an
                 explicit [[nodiscard]], and no call site discards a
                 Submit / SubmitTo / SubmitBatch return as a bare statement.
                 The sanctioned opt-out at a call site is `(void)expr;`.

  raw-primitives Outside src/core/ nobody names std::mutex,
                 std::shared_mutex, std::condition_variable or std::thread
                 directly: first-party code goes through the annotated
                 core wrappers (core/mutex.h, core/epoch_lock.h,
                 core/thread_pool.h) so thread-safety analysis and the
                 runtime lock-order checker see every acquisition.

  wire-symmetry  Every message struct in src/rpc/wire.cc encodes and
                 decodes the same field sequence: the per-kind counts of
                 WireWriter ops (U8/U32/U64/F64/Str) in X::Encode must
                 equal the per-kind counts of WireReader ops in X::Decode,
                 helper pairs (EncodeFoo/DecodeFoo) included. A field
                 added to one side but not the other is exactly the bug
                 that truncates or misparses every subsequent field.

  metric-names   Metric name literals handed to the registry
                 (GetCounter / GetGauge / GetHistogram / Add*Callback)
                 are snake_case, and counter names end in `_total`.

Suppression: append `// kspdg-lint: allow(<rule>)` on the offending line
or the line directly above it. <rule> is one of: nodiscard, raw-mutex,
raw-thread, wire-symmetry, metric-names.

Usage: tools/kspdg_lint.py [--root DIR]
Exits 0 when the tree is clean, 1 when any finding survives suppression.
"""

import argparse
import os
import re
import sys

# --- shared helpers ---------------------------------------------------------

ALLOW_RE = re.compile(r"kspdg-lint:\s*allow\(([a-z-]+)\)")


def iter_source_files(root, subdirs, exts=(".h", ".cc")):
    """Yields repo-relative paths of first-party sources under `subdirs`."""
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            # The lint self-test fixtures are deliberate violations.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(filenames):
                if name.endswith(exts):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root)


def read_lines(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read().splitlines()


def suppressed(lines, lineno, rule):
    """True if line `lineno` (1-based) or the one above allows `rule`."""
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(lines):
            m = ALLOW_RE.search(lines[idx])
            if m and m.group(1) == rule:
                return True
    return False


def strip_comments(line):
    """Drops a // line comment (good enough: no multi-line strings here)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


class Findings:
    def __init__(self):
        self.items = []

    def add(self, rel, lineno, rule, message):
        self.items.append((rel, lineno, rule, message))

    def report(self, out=sys.stdout):
        for rel, lineno, rule, message in sorted(self.items):
            print(f"{rel}:{lineno}: [{rule}] {message}", file=out)


# --- rule: raw-primitives ---------------------------------------------------

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|thread|jthread)\b"
)


def check_raw_primitives(root, findings):
    for rel in iter_source_files(root, ("src", "tools")):
        norm = rel.replace(os.sep, "/")
        if norm.startswith("src/core/"):
            continue  # the wrappers themselves live here
        lines = read_lines(root, rel)
        for lineno, line in enumerate(lines, start=1):
            for m in RAW_PRIMITIVE_RE.finditer(strip_comments(line)):
                # std::thread::hardware_concurrency() is a free query, not
                # a spawned thread; keep it legal.
                if line[m.end() : m.end() + 2] == "::":
                    continue
                kind = m.group(1)
                rule = "raw-thread" if kind in ("thread", "jthread") else "raw-mutex"
                if suppressed(lines, lineno, rule):
                    continue
                findings.add(
                    rel,
                    lineno,
                    rule,
                    f"std::{kind} outside src/core/ — use the annotated "
                    "core wrappers (core/mutex.h, core/thread_pool.h)",
                )


# --- rule: nodiscard --------------------------------------------------------

# Async submit declarations that must be explicitly [[nodiscard]] even
# though their class-level return types may not be.
SUBMIT_DECL_RE = re.compile(
    r"\b(?:static\s+|virtual\s+)*(BatchTicket|SubmitOutcome|bool)\s+"
    r"(Submit(?:To|Batch)?)\s*\("
)

# A bare statement whose value is a discarded Submit-family call:
# starts with a receiver chain, ends in the call. `(void)` casts,
# assignments and returns do not match the anchor.
SUBMIT_DISCARD_RE = re.compile(r"^\s*(?:\w+(?:\.|->|::))+Submit(?:To|Batch)?\s*\(")


def check_nodiscard(root, findings):
    status_h = os.path.join("src", "core", "status.h")
    if os.path.exists(os.path.join(root, status_h)):
        text = "\n".join(read_lines(root, status_h))
        for cls in ("Status", "Result"):
            if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", text):
                findings.add(
                    status_h,
                    1,
                    "nodiscard",
                    f"class {cls} must be declared `class [[nodiscard]] {cls}`",
                )

    for rel in iter_source_files(root, ("src",), exts=(".h",)):
        lines = read_lines(root, rel)
        text = "\n".join(lines)
        for m in SUBMIT_DECL_RE.finditer(text):
            ret, name = m.group(1), m.group(2)
            if ret == "bool" and name != "Submit":
                continue
            # Walk back to the start of this declaration (previous ; { or })
            # and demand the attribute inside it.
            start = max(text.rfind(c, 0, m.start()) for c in ";{}")
            decl_prefix = text[start + 1 : m.start()]
            if "[[nodiscard]]" in decl_prefix:
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            if suppressed(lines, lineno, "nodiscard"):
                continue
            findings.add(
                rel,
                lineno,
                "nodiscard",
                f"declaration `{ret} {name}(...)` must be [[nodiscard]]: "
                "dropping the ticket/outcome silently loses the batch",
            )

    for rel in iter_source_files(root, ("src", "tools", "tests"), exts=(".cc",)):
        lines = read_lines(root, rel)
        for lineno, line in enumerate(lines, start=1):
            if SUBMIT_DISCARD_RE.match(strip_comments(line)):
                if suppressed(lines, lineno, "nodiscard"):
                    continue
                findings.add(
                    rel,
                    lineno,
                    "nodiscard",
                    "discarded Submit/SubmitTo/SubmitBatch result — bind the "
                    "ticket/outcome or opt out explicitly with `(void)`",
                )


# --- rule: wire-symmetry ----------------------------------------------------

ENCODE_METHOD_RE = re.compile(r"std::string\s+(\w+)::Encode\s*\(\s*\)\s*const\s*\{")
DECODE_METHOD_RE = re.compile(r"Status\s+(\w+)::Decode\s*\(")
ENCODE_HELPER_RE = re.compile(r"\bvoid\s+Encode(\w+)\s*\(")
DECODE_HELPER_RE = re.compile(r"\bStatus\s+Decode(\w+)\s*\(")
WIRE_OP_RE = re.compile(r"\b[wr](?:\.|->)(U8|U32|U64|F64|Str)\s*\(")


def _body_after(text, open_brace):
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace : i + 1]
    return text[open_brace:]


def _op_counts(body, helper_re):
    counts = {}
    for m in WIRE_OP_RE.finditer(body):
        counts[m.group(1)] = counts.get(m.group(1), 0) + 1
    for m in helper_re.finditer(body):
        key = "helper:" + m.group(1)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _collect_entities(text, def_re, helper_call_re, skip_name=None):
    """Maps entity name -> (line, op-count dict) for each matching body."""
    entities = {}
    for m in def_re.finditer(text):
        name = m.group(1)
        if name == skip_name:
            continue
        brace = text.find("{", m.end() - 1)
        if brace < 0:
            continue
        body = _body_after(text, brace)
        # Helper calls inside the body (EncodePaths(...)), excluding the
        # entity's own definition line.
        counts = _op_counts(body, helper_call_re)
        lineno = text.count("\n", 0, m.start()) + 1
        entities[name] = (lineno, counts)
    return entities


def check_wire_symmetry(root, findings):
    wire_cc = os.path.join("src", "rpc", "wire.cc")
    if not os.path.exists(os.path.join(root, wire_cc)):
        return
    lines = read_lines(root, wire_cc)
    text = "\n".join(lines)

    helper_call_enc = re.compile(r"\bEncode(\w+)\s*\(")
    helper_call_dec = re.compile(r"\bDecode(\w+)\s*\(")

    encoders = _collect_entities(text, ENCODE_METHOD_RE, helper_call_enc)
    decoders = _collect_entities(text, DECODE_METHOD_RE, helper_call_dec)
    for m in ENCODE_HELPER_RE.finditer(text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        body = _body_after(text, brace)
        encoders["helper " + m.group(1)] = (
            text.count("\n", 0, m.start()) + 1,
            _op_counts(body, helper_call_enc),
        )
    for m in DECODE_HELPER_RE.finditer(text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        body = _body_after(text, brace)
        decoders["helper " + m.group(1)] = (
            text.count("\n", 0, m.start()) + 1,
            _op_counts(body, helper_call_dec),
        )

    for name, (lineno, enc_counts) in sorted(encoders.items()):
        if suppressed(lines, lineno, "wire-symmetry"):
            continue
        if name not in decoders:
            findings.add(
                wire_cc,
                lineno,
                "wire-symmetry",
                f"{name}::Encode has no matching Decode",
            )
            continue
        dec_lineno, dec_counts = decoders[name]
        for op in sorted(set(enc_counts) | set(dec_counts)):
            wrote = enc_counts.get(op, 0)
            read = dec_counts.get(op, 0)
            if wrote != read:
                findings.add(
                    wire_cc,
                    dec_lineno,
                    "wire-symmetry",
                    f"{name}: Encode emits {wrote}x {op} but Decode "
                    f"consumes {read}x — writer and reader disagree on "
                    "the field sequence",
                )
    for name, (lineno, _counts) in sorted(decoders.items()):
        if name not in encoders and not suppressed(lines, lineno, "wire-symmetry"):
            findings.add(
                wire_cc,
                lineno,
                "wire-symmetry",
                f"{name}::Decode has no matching Encode",
            )


# --- rule: metric-names -----------------------------------------------------

METRIC_CALL_RE = re.compile(
    r"\b(GetCounter|GetGauge|GetHistogram|AddCounterCallback|AddGaugeCallback)"
    r'\s*\(\s*"([^"]*)"'
)
SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*[a-z0-9]$")


def check_metric_names(root, findings):
    for rel in iter_source_files(root, ("src", "tools")):
        lines = read_lines(root, rel)
        text = "\n".join(lines)
        for m in METRIC_CALL_RE.finditer(text):
            api, name = m.group(1), m.group(2)
            lineno = text.count("\n", 0, m.start()) + 1
            if suppressed(lines, lineno, "metric-names"):
                continue
            if not SNAKE_RE.match(name):
                findings.add(
                    rel,
                    lineno,
                    "metric-names",
                    f'metric name "{name}" is not snake_case',
                )
            elif api in ("GetCounter", "AddCounterCallback") and not name.endswith(
                "_total"
            ):
                findings.add(
                    rel,
                    lineno,
                    "metric-names",
                    f'counter "{name}" must end in "_total" '
                    "(monotonic-counter naming convention)",
                )


# --- main -------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--root",
        default=default_root,
        help="tree to lint (default: the repo this script lives in)",
    )
    args = parser.parse_args(argv)

    findings = Findings()
    check_raw_primitives(args.root, findings)
    check_nodiscard(args.root, findings)
    check_wire_symmetry(args.root, findings)
    check_metric_names(args.root, findings)

    if findings.items:
        findings.report()
        print(f"kspdg_lint: {len(findings.items)} finding(s)", file=sys.stderr)
        return 1
    print("kspdg_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
